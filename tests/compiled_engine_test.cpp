// Tests for src/sim/compiled_network + the compiled engine path of
// AcceleratorSim/BatchRunner: compiling a network once and running many
// inferences from the shared read-only image must be a pure
// optimisation — SimResult cycles, activations and every EventCounts
// field bit-identical to a freshly-constructed per-inference run,
// across predictor modes, validation modes and thread counts.

#include <gtest/gtest.h>

#include <cstddef>
#include <ranges>
#include <vector>

#include "common/check.hpp"
#include "sim/accelerator.hpp"
#include "sim/batch_runner.hpp"
#include "sim/compiled_network.hpp"
#include "sim/schedule.hpp"
#include "sim_fixtures.hpp"

namespace sparsenn {
namespace {

using test_fixtures::make_batch_fixture;
using test_fixtures::seeded_network;
using test_fixtures::tiny_arch;
using Fixture = test_fixtures::BatchFixture;

/// Seed-engine reference: a brand-new simulator per inference, the
/// one-shot (recompile + full validation) entry point.
SimResult fresh_run(const QuantizedNetwork& network,
                    std::span<const float> input, bool use_predictor) {
  AcceleratorSim sim(tiny_arch());
  return sim.run(network, input, use_predictor);
}

TEST(CompiledNetwork, SlicesMatchFreshlyBuiltOnes) {
  Rng rng{3};
  const QuantizedNetwork q = seeded_network(rng);
  const ArchParams arch = tiny_arch();

  for (const bool uv_on : {true, false}) {
    const CompiledNetwork compiled(q, arch, uv_on);
    ASSERT_EQ(compiled.num_layers(), q.num_layers());
    for (std::size_t l = 0; l < q.num_layers(); ++l) {
      for (std::size_t pe = 0; pe < arch.num_pes; ++pe) {
        const OwnedPeSlice fresh =
            make_pe_slice(q.layer(l), arch, pe, uv_on);
        const PeLayerSlice& got = compiled.slice(l, pe);
        EXPECT_EQ(got.layer_input_dim, fresh.view.layer_input_dim);
        EXPECT_EQ(got.layer_output_dim, fresh.view.layer_output_dim);
        EXPECT_EQ(got.rank, fresh.view.rank);
        EXPECT_EQ(got.has_predictor, fresh.view.has_predictor);
        EXPECT_EQ(got.is_output, fresh.view.is_output);
        EXPECT_EQ(got.predictor_threshold_raw,
                  fresh.view.predictor_threshold_raw);
        EXPECT_TRUE(std::ranges::equal(got.global_rows, fresh.global_rows))
            << "layer " << l << " pe " << pe;
        EXPECT_TRUE(std::ranges::equal(got.w_words, fresh.w_words))
            << "layer " << l << " pe " << pe;
        EXPECT_TRUE(std::ranges::equal(got.u_words, fresh.u_words))
            << "layer " << l << " pe " << pe;
        EXPECT_TRUE(std::ranges::equal(got.v_words, fresh.v_words))
            << "layer " << l << " pe " << pe;
      }
    }
  }
}

/// Compiled engine vs the per-inference engine, both uv modes, both
/// validation modes — every SimResult field must be bit-identical
/// (operator== covers cycles, activations, NocStats and EventCounts).
class CompiledEngineExactness : public ::testing::TestWithParam<bool> {};

TEST_P(CompiledEngineExactness, BitIdenticalToFreshPerInferenceRuns) {
  const bool uv_on = GetParam();
  const Fixture f = make_batch_fixture(6, /*seed=*/21);
  const CompiledNetwork compiled(f.network, tiny_arch(), uv_on);

  AcceleratorSim sim(tiny_arch());  // one reused simulator
  for (std::size_t i = 0; i < f.data.size(); ++i) {
    const SimResult expected =
        fresh_run(f.network, f.data.image(i), uv_on);
    const SimResult validated =
        sim.run(compiled, f.data.image(i), ValidationMode::kFull);
    const SimResult unvalidated =
        sim.run(compiled, f.data.image(i), ValidationMode::kOff);
    EXPECT_EQ(validated, expected) << "input " << i << " (kFull)";
    EXPECT_EQ(unvalidated, expected) << "input " << i << " (kOff)";
  }
}

INSTANTIATE_TEST_SUITE_P(UvModes, CompiledEngineExactness,
                         ::testing::Values(true, false));

/// One CompiledNetwork shared read-only across BatchRunner workers:
/// per-input results identical to fresh per-inference runs for every
/// thread count.
class CompiledBatchThreads : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(CompiledBatchThreads, SharedAcrossWorkersMatchesFreshRuns) {
  const Fixture f = make_batch_fixture(12, /*seed=*/33);
  for (const bool uv_on : {true, false}) {
    const CompiledNetwork compiled(f.network, tiny_arch(), uv_on);

    BatchOptions options;
    options.num_threads = GetParam();
    options.use_predictor = uv_on;
    const BatchRunner runner(tiny_arch(), options);
    // The same image is shared by all workers of this run (and can be
    // reused across runs).
    const BatchResult batched = runner.run(compiled, f.data);

    ASSERT_EQ(batched.results.size(), f.data.size());
    for (std::size_t i = 0; i < f.data.size(); ++i) {
      EXPECT_EQ(batched.results[i],
                fresh_run(f.network, f.data.image(i), uv_on))
          << "input " << i << " uv " << uv_on << " threads " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CompiledBatchThreads,
                         ::testing::Values(1, 2, 8));

TEST(CompiledEngine, BatchValidationModesAreBitIdentical) {
  const Fixture f = make_batch_fixture(10, /*seed=*/41);
  std::vector<BatchResult> runs;
  for (const BatchValidation v :
       {BatchValidation::kFull, BatchValidation::kFirstInference,
        BatchValidation::kOff}) {
    BatchOptions options;
    options.num_threads = 2;
    options.validation = v;
    runs.push_back(BatchRunner(tiny_arch(), options).run(f.network, f.data));
  }
  const BatchResult& reference = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].results.size(), reference.results.size());
    for (std::size_t i = 0; i < reference.results.size(); ++i)
      EXPECT_EQ(runs[r].results[i], reference.results[i])
          << "mode " << r << " input " << i;
    EXPECT_EQ(runs[r].total_cycles, reference.total_cycles);
    EXPECT_EQ(runs[r].total_events, reference.total_events);
    EXPECT_EQ(runs[r].error_rate_percent, reference.error_rate_percent);
  }
}

TEST(CompiledEngine, MismatchedArchitectureIsRejected) {
  Rng rng{5};
  const QuantizedNetwork q = seeded_network(rng);
  ArchParams other = tiny_arch();
  other.num_pes = 4;
  other.router_levels = 1;
  const CompiledNetwork compiled(q, other, true);

  AcceleratorSim sim(tiny_arch());
  const Vector x(24, 0.5f);
  EXPECT_THROW((void)sim.run(compiled, x), std::invalid_argument);
}

TEST(CompiledEngine, ValidationStillCatchesDivergence) {
  // kFull must keep the golden cross-check armed: a compiled image
  // that no longer matches its source network (stale snapshot after a
  // threshold change) trips the ensures().
  Rng rng{9};
  QuantizedNetwork q = seeded_network(rng);
  const CompiledNetwork stale(q, tiny_arch(), true);
  q.set_prediction_threshold(0.35);  // mutate AFTER compiling

  AcceleratorSim sim(tiny_arch());
  Vector x(24);
  for (float& v : x)
    v = rng.bernoulli(0.3) ? 0.0f
                           : static_cast<float>(rng.uniform(0.5, 1.0));
  // The stale image predicts with the old threshold; the golden model
  // uses the new one. If the masks differ, kFull must throw; kOff must
  // run through regardless (it trusts the image).
  EXPECT_NO_THROW((void)sim.run(stale, x, ValidationMode::kOff));
  SimResult from_stale = sim.run(stale, x, ValidationMode::kOff);
  const SimResult from_fresh = AcceleratorSim(tiny_arch()).run(q, x, true);
  if (from_stale.output != from_fresh.output) {
    EXPECT_THROW((void)sim.run(stale, x, ValidationMode::kFull),
                 InvariantError);
  }
}

}  // namespace
}  // namespace sparsenn
