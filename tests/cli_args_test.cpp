// Tests for src/common/cli_args: the strict `--key value` parser the
// CLI and benches share. The regression pinned here: a trailing flag
// with no value used to be silently dropped (`--samples` at the end of
// the line fell back to the default); it is now a UsageError.

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "common/cli_args.hpp"

namespace sparsenn {
namespace {

CliArgs parse(std::initializer_list<const char*> argv, int first = 0) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data(), first);
}

TEST(CliArgs, ParsesKeyValuePairs) {
  const CliArgs args =
      parse({"--samples", "12", "--uv", "off", "--model", "m.bin"});
  EXPECT_EQ(args.get_size("samples", 3), 12u);
  EXPECT_EQ(args.get("uv", "on"), "off");
  EXPECT_EQ(args.get("model", ""), "m.bin");
  EXPECT_TRUE(args.has("samples"));
  EXPECT_FALSE(args.has("threads"));
}

TEST(CliArgs, MissingKeysFallBackToDefaults) {
  const CliArgs args = parse({"--uv", "on"});
  EXPECT_EQ(args.get_size("samples", 7), 7u);
  EXPECT_EQ(args.get("model", "default.bin"), "default.bin");
}

TEST(CliArgs, SkipsLeadingPositionals) {
  // The CLI passes first=2 to skip "prog subcommand".
  const CliArgs args = parse({"prog", "batch", "--threads", "4"},
                             /*first=*/2);
  EXPECT_EQ(args.get_size("threads", 0), 4u);
}

TEST(CliArgs, TrailingFlagWithoutValueIsUsageError) {
  // Regression: this used to silently fall back to the default.
  EXPECT_THROW(parse({"--model", "m.bin", "--samples"}), UsageError);
  EXPECT_THROW(parse({"--samples"}), UsageError);
}

TEST(CliArgs, RejectsMalformedIntegers) {
  EXPECT_THROW(parse({"--samples", "-3"}).get_size("samples", 0),
               UsageError);
  EXPECT_THROW(parse({"--samples", "12x"}).get_size("samples", 0),
               UsageError);
  EXPECT_THROW(parse({"--samples", ""}).get_size("samples", 0),
               UsageError);
  EXPECT_THROW(parse({"--samples", "many"}).get_size("samples", 0),
               UsageError);
}

TEST(CliArgs, UsageErrorIsARuntimeError) {
  // main() catches UsageError before std::exception to exit 2.
  try {
    parse({"--samples"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("--samples"), std::string::npos);
  }
}

}  // namespace
}  // namespace sparsenn
