// Unit and property tests for src/tensor: dense kernels, the SVD stack
// (Jacobi eigensolver, randomized truncated SVD), and sparse utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparse.hpp"
#include "tensor/svd.hpp"

namespace sparsenn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng{seed};
  return Matrix::randn(r, c, 1.0f, rng);
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(3, 4, 2.0f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m.at(2, 3), 2.0f);
  m.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_THROW(m.at(3, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 4), std::invalid_argument);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0f, 2.0f}, {3.0f}}),
               std::invalid_argument);
  const Matrix m = Matrix::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix m = random_matrix(5, 7, 1);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MatvecAgainstManual) {
  const Matrix m = Matrix::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  const Vector y = matvec(m, std::vector<float>{5.0f, 6.0f});
  EXPECT_FLOAT_EQ(y[0], 17.0f);
  EXPECT_FLOAT_EQ(y[1], 39.0f);
  EXPECT_THROW(matvec(m, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Matrix, MatvecTransposedMatchesExplicitTranspose) {
  const Matrix m = random_matrix(9, 13, 2);
  Rng rng{3};
  Vector x(9);
  for (float& v : x) v = static_cast<float>(rng.normal());
  const Vector a = matvec_transposed(m, x);
  const Vector b = matvec(m.transposed(), x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4);
}

TEST(Matrix, MatmulAgainstNaive) {
  const Matrix a = random_matrix(17, 33, 4);
  const Matrix b = random_matrix(33, 11, 5);
  const Matrix c = matmul(a, b);
  for (std::size_t i = 0; i < a.rows(); i += 5) {
    for (std::size_t j = 0; j < b.cols(); j += 3) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += double{a(i, k)} * double{b(k, j)};
      EXPECT_NEAR(c(i, j), acc, 1e-3);
    }
  }
}

TEST(Matrix, MatmulIdentity) {
  const Matrix a = random_matrix(8, 8, 6);
  const Matrix i8 = Matrix::identity(8);
  const Matrix left = matmul(i8, a);
  const Matrix right = matmul(a, i8);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(left(r, c), a(r, c), 1e-6);
      EXPECT_NEAR(right(r, c), a(r, c), 1e-6);
    }
}

TEST(Matrix, AddOuterRankOneUpdate) {
  Matrix m(2, 3, 0.0f);
  add_outer(m, 2.0f, std::vector<float>{1.0f, -1.0f},
            std::vector<float>{1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(m(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(m(1, 2), -6.0f);
}

TEST(Matrix, DotAndNorm) {
  const std::vector<float> x{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(dot(x, std::vector<float>{1.0f, 1.0f}), 7.0);
}

TEST(Ops, ReluAndMasks) {
  const std::vector<float> x{-1.0f, 0.0f, 2.0f};
  const Vector r = relu(x);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
  const Vector s = sign(x);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);  // sign(0) = +1 by convention
  const Vector m = positive_mask(x);
  EXPECT_FLOAT_EQ(m[1], 0.0f);  // mask(0) = 0: not computed
  EXPECT_FLOAT_EQ(m[2], 1.0f);
}

TEST(Ops, StraightThroughWindow) {
  const std::vector<float> x{-2.0f, -0.5f, 0.0f, 0.99f, 1.0f};
  const Vector w = straight_through_window(x);
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_FLOAT_EQ(w[1], 1.0f);
  EXPECT_FLOAT_EQ(w[2], 1.0f);
  EXPECT_FLOAT_EQ(w[3], 1.0f);
  EXPECT_FLOAT_EQ(w[4], 0.0f);
}

TEST(Ops, SoftmaxIsDistributionAndStable) {
  const std::vector<float> logits{1000.0f, 1001.0f, 999.0f};
  const Vector p = softmax(logits);
  double total = 0.0;
  for (float v : p) {
    EXPECT_GT(v, 0.0f);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_EQ(argmax(p), 1u);
}

TEST(Ops, HadamardAndClamp) {
  std::vector<float> x{1.0f, -4.0f, 9.0f};
  const Vector h = hadamard(x, std::vector<float>{2.0f, 0.5f, 0.0f});
  EXPECT_FLOAT_EQ(h[0], 2.0f);
  EXPECT_FLOAT_EQ(h[2], 0.0f);
  clamp_inplace(x, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(x[1], -1.0f);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
}

// ---- SVD ----

TEST(Svd, JacobiEigenOnKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a = Matrix::from_rows({{2.0f, 1.0f}, {1.0f, 2.0f}});
  const EigResult eig = jacobi_eigendecomposition(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-5);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-5);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-4);
}

TEST(Svd, OrthonormalizeColumnsProducesOrthonormal) {
  const Matrix a = random_matrix(20, 6, 7);
  const Matrix q = orthonormalize_columns(a);
  ASSERT_EQ(q.cols(), 6u);
  const Matrix gram = matmul(q.transposed(), q);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-4);
}

TEST(Svd, ExactRecoveryOfLowRankMatrix) {
  // Build an exactly rank-3 matrix and recover it at rank 3.
  Rng rng{8};
  const Matrix u = Matrix::randn(30, 3, 1.0f, rng);
  const Matrix v = Matrix::randn(3, 25, 1.0f, rng);
  const Matrix w = matmul(u, v);
  const SvdResult svd = truncated_svd(w, 3);
  const Matrix back = svd.reconstruct();
  double err = 0.0;
  for (std::size_t r = 0; r < w.rows(); ++r)
    for (std::size_t c = 0; c < w.cols(); ++c)
      err += std::pow(double{w(r, c)} - double{back(r, c)}, 2);
  EXPECT_LT(std::sqrt(err) / w.frobenius_norm(), 1e-3);
}

TEST(Svd, SingularValuesDescending) {
  const Matrix w = random_matrix(40, 30, 9);
  const SvdResult svd = truncated_svd(w, 10);
  for (std::size_t i = 0; i + 1 < svd.sigma.size(); ++i)
    EXPECT_GE(svd.sigma[i], svd.sigma[i + 1] - 1e-5f);
}

TEST(Svd, TruncatedMatchesJacobiOracle) {
  const Matrix w = random_matrix(24, 18, 10);
  const SvdResult fast = truncated_svd(w, 6);
  const SvdResult oracle = jacobi_svd(w);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(fast.sigma[i], oracle.sigma[i],
                0.02 * oracle.sigma[0] + 1e-4);
}

TEST(Svd, RankValidation) {
  const Matrix w = random_matrix(5, 4, 11);
  EXPECT_THROW(truncated_svd(w, 0), std::invalid_argument);
  EXPECT_THROW(truncated_svd(w, 5), std::invalid_argument);
  EXPECT_NO_THROW(truncated_svd(w, 4));
}

TEST(Svd, BestRankOneOfDiagonal) {
  // diag(3, 1): rank-1 truncation keeps the 3.
  const Matrix w = Matrix::from_rows({{3.0f, 0.0f}, {0.0f, 1.0f}});
  const SvdResult svd = truncated_svd(w, 1);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-4);
  const Matrix approx = svd.reconstruct();
  EXPECT_NEAR(approx(0, 0), 3.0, 1e-3);
  EXPECT_NEAR(approx(1, 1), 0.0, 1e-3);
}

/// Property sweep: relative reconstruction error at rank r never
/// exceeds the tail mass of the spectrum (Eckart–Young, approximately,
/// since the range finder is randomized).
class SvdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvdSweep, ReconstructionErrorBounded) {
  const std::size_t rank = GetParam();
  const Matrix w = random_matrix(32, 32, 100 + rank);
  const SvdResult full = jacobi_svd(w);
  const SvdResult trunc = truncated_svd(w, rank);
  const Matrix back = trunc.reconstruct();

  double err2 = 0.0;
  for (std::size_t r = 0; r < w.rows(); ++r)
    for (std::size_t c = 0; c < w.cols(); ++c)
      err2 += std::pow(double{w(r, c)} - double{back(r, c)}, 2);

  double tail2 = 0.0;
  for (std::size_t i = rank; i < full.sigma.size(); ++i)
    tail2 += double{full.sigma[i]} * double{full.sigma[i]};

  EXPECT_LE(std::sqrt(err2), 1.10 * std::sqrt(tail2) + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SvdSweep,
                         ::testing::Values(2, 4, 8, 16, 24, 31));

// ---- sparse ----

TEST(Sparse, SparseVectorRoundTrip) {
  const std::vector<float> dense{0.0f, 1.5f, 0.0f, -2.0f, 0.0f};
  const SparseVector sv = SparseVector::from_dense(dense);
  EXPECT_EQ(sv.nnz(), 2u);
  EXPECT_EQ(sv.indices[0], 1u);
  EXPECT_EQ(sv.indices[1], 3u);
  const Vector back = sv.to_dense(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(back[i], dense[i]);
}

TEST(Sparse, CountNonzerosWithTolerance) {
  const std::vector<float> x{0.0f, 1e-6f, 0.5f};
  EXPECT_EQ(count_nonzeros(x), 2u);
  EXPECT_EQ(count_nonzeros(x, 1e-3f), 1u);
}

TEST(Sparse, CsrRoundTripAndMultiply) {
  Rng rng{12};
  Matrix dense(13, 17, 0.0f);
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (rng.bernoulli(0.3))
        dense(r, c) = static_cast<float>(rng.normal());

  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.to_dense(), dense);

  Vector x(17);
  for (float& v : x) v = static_cast<float>(rng.normal());
  const Vector a = csr.multiply(x);
  const Vector b = matvec(dense, x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4);
}

TEST(Sparse, CsrEmptyRows) {
  Matrix dense(3, 4, 0.0f);
  dense(1, 2) = 5.0f;
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_TRUE(csr.row_indices(0).empty());
  EXPECT_EQ(csr.row_indices(1).size(), 1u);
  EXPECT_THROW(csr.row_indices(3), std::invalid_argument);
}

}  // namespace
}  // namespace sparsenn
